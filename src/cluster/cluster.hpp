// Rack-scale composition: N chiplet servers behind a front-end balancer.
//
// ClusterSim instantiates N fully independent ServerSims — each with its own
// Simulator and Platform, built from any mix of platform specs — and feeds
// them from one open-loop cluster arrival stream through a load balancer.
// Forwarding a request to a server crosses an inter-server ingress link
// (NIC -> P-Link/CXL style: FIFO serialization at a configured bandwidth,
// then a fixed propagation latency). The link contends with nothing inside
// the target box, but its delay counts against the request's end-to-end SLO,
// so cross-server placement is a real fourth policy axis above the per-CCX
// one, not a free re-labeling.
//
// Execution model — conservative lookahead in lockstep epochs:
// the instances advance in epochs of length E = link latency. At each epoch
// boundary the balancer (main thread) generates the arrivals of the next
// epoch, routes them using server state observed at the boundary, and
// enqueues their delivery events; every delivery lands >= one epoch ahead,
// so nothing a server executes inside the epoch can influence a routing
// decision already made — exactly the staleness a real front end with an
// E one-way delay operates under. Between boundaries each instance runs on
// a *pinned* shard thread (instance i always executes on shard i mod jobs:
// the fabric layer keeps thread-local slab pools, so an instance must be
// built, run and destroyed by one thread). All cross-instance interaction
// happens on the main thread between barriers in index order, so cluster
// output is bit-identical at --jobs 1 and --jobs N.
//
// The default engine fuses epochs: whenever the balancer can prove no
// routing or snapshot read falls between two boundaries (always under
// local_arrivals; for round-robin, which reads no server state, the whole
// arrival window), one exec::Lockstep barrier covers the entire run of
// epochs, and the drain phase jumps straight to the epoch boundary of the
// earliest pending event instead of stepping empty epochs. Engine::kStep
// forces the historical barrier-per-epoch loop; both engines are
// byte-equivalent (see DESIGN.md's lockstep-fusion mechanism).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "exec/lockstep.hpp"
#include "serve/server.hpp"
#include "topo/params.hpp"

namespace scn::cluster {

/// Cross-server placement: which box the front end forwards a request to.
enum class LbPolicy : std::uint8_t {
  /// Request i goes to server i mod N, blind to load and topology.
  kRoundRobin,
  /// Join-shortest-outstanding: the server with the fewest requests open
  /// (as observed at the last epoch boundary, plus forwards already sent
  /// this epoch). Ties break toward the lowest index.
  kLeastOutstanding,
  /// Telemetry-driven: per-server GMI byte-counter deltas sampled at each
  /// epoch boundary (the cluster-level mirror of serve::Policy::kTelemetry)
  /// scaled by the server's outstanding depth; steers around a box whose
  /// fabric a batch antagonist is saturating even when queue depths match.
  kTelemetry,
};

[[nodiscard]] constexpr const char* to_string(LbPolicy p) noexcept {
  switch (p) {
    case LbPolicy::kRoundRobin: return "cluster-rr";
    case LbPolicy::kLeastOutstanding: return "least-out";
    case LbPolicy::kTelemetry: return "cluster-telemetry";
  }
  return "?";
}

[[nodiscard]] inline std::optional<LbPolicy> parse_lb_policy(std::string_view s) noexcept {
  if (s == "cluster-rr" || s == "rr") return LbPolicy::kRoundRobin;
  if (s == "least-out" || s == "jsq") return LbPolicy::kLeastOutstanding;
  if (s == "cluster-telemetry" || s == "telemetry") return LbPolicy::kTelemetry;
  return std::nullopt;
}

/// Execution engine for the lockstep loop. Both engines produce byte-identical
/// reports at any `jobs`; they differ only in how many synchronization rounds
/// (barriers) they pay per simulated epoch.
enum class Engine : std::uint8_t {
  /// Fused batches + idle-epoch fast-skip: one barrier covers every run of
  /// consecutive epochs with no routing or snapshot read between them, and
  /// the drain jumps straight to the next pending event's epoch boundary.
  kFused,
  /// One barrier per epoch, exactly the historical loop. Kept as the
  /// equivalence oracle and the baseline for the speedup ctest.
  kStep,
};

[[nodiscard]] constexpr const char* to_string(Engine e) noexcept {
  switch (e) {
    case Engine::kFused: return "fused";
    case Engine::kStep: return "step";
  }
  return "?";
}

[[nodiscard]] inline std::optional<Engine> parse_engine(std::string_view s) noexcept {
  if (s == "fused") return Engine::kFused;
  if (s == "step") return Engine::kStep;
  return std::nullopt;
}

/// The inter-server ingress path: a FIFO NIC link per server. A forward
/// serializes `request_bytes` at `bytes_per_ns` behind earlier forwards to
/// the same server, then propagates for `latency`.
struct LinkConfig {
  sim::Tick latency = sim::from_ns(800.0);  ///< one-way propagation
  double bytes_per_ns = 12.5;               ///< 100 Gb/s; <= 0 disables serialization
  double request_bytes = 512.0;             ///< on-wire size of one forwarded request
};

struct ClusterConfig {
  /// One entry per server; any mix of builtin/what-if platform specs.
  std::vector<topo::PlatformParams> servers;
  LbPolicy lb = LbPolicy::kRoundRobin;
  /// Per-server (CCX-level) placement policy, the existing axis.
  serve::Policy placement = serve::Policy::kLocal;
  /// Global Traffic Manager policy bundle, applied identically on every
  /// server (queue discipline, admission control, hedging). The default
  /// bundle reproduces the pre-GTM cluster exactly.
  gtm::TrafficPolicy gtm;
  /// Tiered-memory config, applied on every server that has a CXL tier
  /// (forced off per-box on servers without one — a heterogeneous rack must
  /// not fail to build). The kOff default reproduces the pre-tier cluster.
  tier::TierConfig tier;
  /// Cluster-wide offered load (ignored when local_arrivals is set).
  serve::ArrivalConfig arrival;
  /// Shared request catalog; empty selects a default catalog valid on every
  /// server (the CXL class is dropped if any server lacks a CXL tier).
  std::vector<serve::RequestClass> classes;
  std::uint32_t worker_slots = 4;
  sim::Tick warmup = sim::from_us(40.0);
  sim::Tick stop = sim::from_us(200.0);
  sim::Tick max_drain = sim::from_ms(2.0);
  std::uint64_t seed = 1;
  /// Server index running the CCD0 batch antagonist; -1 for none.
  int antagonist_server = -1;
  LinkConfig link;
  /// Each server runs its own ArrivalProcess instead of the front end (no
  /// forwarding at all) — the configuration that must reproduce standalone
  /// ServerSim runs bit-identically.
  bool local_arrivals = false;
  /// Pinned shard threads; <= 1 runs every instance on the caller's thread.
  /// Output is bit-identical for any value.
  int jobs = 1;
  /// Lockstep execution engine; kFused and kStep are byte-equivalent, kStep
  /// simply pays one barrier per epoch (the pre-fusion behavior).
  Engine engine = Engine::kFused;
};

struct ClusterReport {
  std::uint64_t arrivals = 0;  ///< measured (post-warmup) cluster arrivals
  std::uint64_t completed = 0;
  std::uint64_t in_slo = 0;
  std::uint64_t rejected = 0;    ///< admission refusals summed over servers
  std::uint64_t hedges = 0;      ///< hedge duplicates issued, summed
  std::uint64_t hedge_wins = 0;  ///< completions the duplicate won, summed
  std::uint64_t forwarded = 0;  ///< requests routed by the front end (all, incl. warmup)
  /// Lookahead epochs the run covered (simulated-time windows of length
  /// epoch_length()). Identical across engines and `jobs` values — part of
  /// the byte-equivalence contract.
  std::uint64_t epochs = 0;
  /// Synchronization rounds actually paid. Equals `epochs` for Engine::kStep;
  /// the fused engine covers many epochs per barrier, so this is the direct
  /// measure of what fusion and the idle fast-skip save.
  std::uint64_t barriers = 0;
  double offered_per_us = 0.0;
  double achieved_per_us = 0.0;
  double goodput_per_us = 0.0;
  double mean_ns = 0.0;  ///< merged exact percentiles over every server/class
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;
  double slo_violation_frac = 0.0;
  double rejected_frac = 0.0;  ///< rejected / arrivals
  /// Jain index over per-server SLO-compliant completions: did the balancer
  /// spread the work, or pile it on one box?
  double jain_server_fairness = 1.0;
  double link_wait_mean_ns = 0.0;  ///< mean NIC serialization queue wait
  // Tiered-memory counters summed over every server (zero with the tier off).
  std::uint64_t tier_accesses = 0;
  std::uint64_t tier_dram_hits = 0;
  std::uint64_t tier_promotions = 0;
  std::uint64_t tier_demotions = 0;
  std::uint64_t tier_migrated_bytes = 0;
  double tier_hit_ratio = 1.0;  ///< cluster-wide dram_hits / accesses
  std::vector<serve::Report> per_server;
  std::vector<std::uint64_t> forwarded_per_server;
};

/// Seed handed to server `server` of a cluster seeded with `cluster_seed`.
/// Exposed so a standalone ServerSim can replay exactly what a cluster
/// member saw (the zero-forwarding equivalence proof in test_cluster).
[[nodiscard]] std::uint64_t server_seed(std::uint64_t cluster_seed, int server) noexcept;

class ClusterSim {
 public:
  /// Validates the config and builds every instance (on its shard thread).
  /// Throws std::invalid_argument / whatever ServerSim's ctor throws.
  explicit ClusterSim(ClusterConfig config);
  ~ClusterSim();

  ClusterSim(const ClusterSim&) = delete;
  ClusterSim& operator=(const ClusterSim&) = delete;

  /// Run arrivals to `stop`, then drain epochs until every server is idle
  /// and no forward is in flight, or `max_drain` extra time elapses.
  void run();

  [[nodiscard]] ClusterReport report() const;

  [[nodiscard]] int server_count() const noexcept { return static_cast<int>(instances_.size()); }
  [[nodiscard]] const serve::ServerSim& server(int i) const;
  [[nodiscard]] const std::vector<serve::RequestClass>& classes() const noexcept { return catalog_; }
  [[nodiscard]] sim::Tick epoch_length() const noexcept { return epoch_; }

 private:
  struct Instance;

  void run_step();
  void run_fused();
  void drain_fused(sim::Tick now);
  void route_epoch(sim::Tick from, sim::Tick to);
  void forward(int target, int cls, sim::Tick at);
  [[nodiscard]] int pick_server();
  [[nodiscard]] int pick_class();
  /// One synchronization round: every instance applies its pending forward
  /// deliveries (each pushed when the instance reaches the delivery's routing
  /// boundary, reproducing the per-epoch engine's event order exactly) and
  /// runs to `boundary`.
  void advance_all(sim::Tick boundary);
  /// advance_all plus epoch accounting: credits every epoch window in
  /// (from, to] so ClusterReport::epochs stays engine-independent.
  void advance_epochs(sim::Tick from, sim::Tick to);
  void advance_instance(Instance& inst, sim::Tick target);
  void sample_epoch();
  /// Re-establish the telemetry byte-counter baseline after a fast-skip, so
  /// the next sample_epoch() delta spans exactly one epoch again.
  void sample_gmi_baseline();
  [[nodiscard]] bool needs_snapshots() const noexcept;
  [[nodiscard]] bool needs_gmi() const noexcept;
  [[nodiscard]] bool busy() const;

  ClusterConfig cfg_;
  std::vector<serve::RequestClass> catalog_;
  sim::Tick epoch_ = 1;

  std::unique_ptr<exec::Lockstep> lockstep_;  ///< declared before instances_: joined last
  std::vector<std::unique_ptr<Instance>> instances_;

  std::unique_ptr<serve::ArrivalProcess> arrivals_;  ///< front-end stream
  sim::Rng class_rng_;
  sim::Tick next_arrival_ = 0;
  sim::Tick route_at_ = 0;  ///< routing boundary forwards are tagged with
  sim::Tick advance_target_ = 0;
  std::size_t rr_next_ = 0;
  std::uint64_t forwarded_ = 0;
  double link_wait_ticks_ = 0.0;
  std::uint64_t epochs_run_ = 0;
  std::uint64_t barriers_run_ = 0;
  bool ran_ = false;
};

}  // namespace scn::cluster
