#include "cluster/cluster.hpp"

#include <algorithm>
#include <exception>
#include <limits>
#include <stdexcept>
#include <utility>

#include "cnet/telemetry.hpp"
#include "exec/sweep.hpp"
#include "stats/fairness.hpp"
#include "topo/platform.hpp"

namespace scn::cluster {
namespace {

/// Sentinel for "the arrival stream ran dry": far enough in the future that
/// no routing boundary can reach it, small enough that arithmetic on it
/// cannot overflow.
constexpr sim::Tick kNoMoreArrivals = std::numeric_limits<sim::Tick>::max() / 2;

/// Epoch windows of length `epoch` needed to cover (from, to]. Both engines
/// credit epochs through this, so ClusterReport::epochs is engine-invariant.
[[nodiscard]] constexpr std::uint64_t epoch_windows(sim::Tick from, sim::Tick to,
                                                    sim::Tick epoch) noexcept {
  return to > from ? static_cast<std::uint64_t>((to - from + epoch - 1) / epoch) : 0u;
}

}  // namespace

std::uint64_t server_seed(std::uint64_t cluster_seed, int server) noexcept {
  return exec::point_seed(cluster_seed, static_cast<std::uint64_t>(server));
}

// ---- one server instance ---------------------------------------------------

struct ClusterSim::Instance {
  sim::Simulator sim;
  std::unique_ptr<topo::Platform> platform;
  std::unique_ptr<serve::ServerSim> server;
  std::exception_ptr build_error;

  /// A forward routed at boundary `route_at`, to be injected at `deliver`.
  /// The balancer records these on the main thread; the instance's shard
  /// pushes each one into the event queue only once the instance has
  /// executed up to `route_at` — the same clock the per-epoch engine pushed
  /// at — so fused batches preserve the exact same-tick event order (the
  /// queue breaks time ties by push sequence).
  struct PendingForward {
    sim::Tick route_at;
    sim::Tick deliver;
    int cls;
    sim::Tick origin;
  };

  // Front-end state for this server, touched only by the main thread between
  // barriers (link_busy, snapshots, pending) or by this instance's own
  // delivery events on its shard (inflight_forwards decrement).
  std::vector<PendingForward> pending;
  sim::Tick link_busy = 0;          ///< NIC ingress FIFO: busy-until time
  std::uint64_t forwarded = 0;      ///< requests the balancer sent here
  int inflight_forwards = 0;        ///< forwarded but not yet delivered
  int snap_outstanding = 0;         ///< outstanding at the last boundary
  double gmi_last_bytes = 0.0;      ///< GMI byte counter at the last epoch
  double gmi_delta = 0.0;           ///< bytes moved in the last epoch
};

ClusterSim::ClusterSim(ClusterConfig config) : cfg_(std::move(config)), class_rng_(0) {
  if (cfg_.servers.empty()) {
    throw std::invalid_argument("cluster: at least one server is required");
  }
  if (cfg_.warmup >= cfg_.stop) {
    throw std::invalid_argument("cluster: warmup must be earlier than stop");
  }
  if (cfg_.antagonist_server >= static_cast<int>(cfg_.servers.size())) {
    throw std::invalid_argument("cluster: antagonist_server out of range");
  }
  if (cfg_.link.latency < 0 || cfg_.link.request_bytes < 0.0) {
    throw std::invalid_argument("cluster: link latency and request bytes must be >= 0");
  }

  // Shared catalog: class indices must mean the same thing on every server.
  // When any box lacks a CXL tier, build the default catalog from such a box
  // so the CXL-tiered class is dropped cluster-wide rather than crashing the
  // servers that cannot serve it.
  if (!cfg_.classes.empty()) {
    catalog_ = cfg_.classes;
  } else {
    const topo::PlatformParams* base = &cfg_.servers.front();
    for (const auto& p : cfg_.servers) {
      if (!p.has_cxl()) {
        base = &p;
        break;
      }
    }
    catalog_ = serve::default_classes(*base);
  }

  // Lookahead bound: every forward issued in epoch [T, T+E) delivers at or
  // after T+E when E == link latency, so instances can run an epoch without
  // seeing each other. A zero-latency link degenerates to one-tick epochs.
  epoch_ = std::max<sim::Tick>(cfg_.link.latency, 1);

  // Front-end streams, salted so they cannot collide with the per-server
  // seed chain (server_seed derives from cfg_.seed too).
  std::uint64_t s = cfg_.seed ^ 0x9e3779b97f4a7c15ULL;
  arrivals_ = std::make_unique<serve::ArrivalProcess>(cfg_.arrival, sim::splitmix64(s));
  class_rng_.reseed(sim::splitmix64(s));

  const int n = static_cast<int>(cfg_.servers.size());
  const int jobs = std::min(std::max(cfg_.jobs, 1), n);
  lockstep_ = std::make_unique<exec::Lockstep>(jobs > 1 ? jobs : 0);
  lockstep_->set_work([this](int shard) {
    const int stride = std::max(lockstep_->shards(), 1);
    const int count = static_cast<int>(instances_.size());
    for (int i = shard; i < count; i += stride) {
      advance_instance(*instances_[static_cast<std::size_t>(i)], advance_target_);
    }
  });

  instances_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) instances_.push_back(std::make_unique<Instance>());
  for (int i = 0; i < n; ++i) {
    Instance* inst = instances_[static_cast<std::size_t>(i)].get();
    serve::ServerConfig sc;
    sc.policy = cfg_.placement;
    sc.gtm = cfg_.gtm;
    sc.arrival = cfg_.arrival;
    sc.classes = catalog_;
    sc.worker_slots = cfg_.worker_slots;
    sc.warmup = cfg_.warmup;
    sc.stop = cfg_.stop;
    sc.external_arrivals = !cfg_.local_arrivals;
    sc.seed = server_seed(cfg_.seed, i);
    sc.antagonist = i == cfg_.antagonist_server;
    // Tiering applies per box, and only where there is a CXL device to tier
    // against: a heterogeneous rack keeps its DRAM-only servers on the exact
    // pre-tier code paths rather than failing the whole cluster build.
    sc.tier = cfg_.tier;
    if (!cfg_.servers[static_cast<std::size_t>(i)].has_cxl()) sc.tier.mode = tier::Mode::kOff;
    lockstep_->post(i, [inst, params = cfg_.servers[static_cast<std::size_t>(i)],
                        sc = std::move(sc)]() mutable {
      try {
        inst->platform = std::make_unique<topo::Platform>(inst->sim, std::move(params));
        inst->server =
            std::make_unique<serve::ServerSim>(inst->sim, *inst->platform, std::move(sc));
        inst->server->start();
      } catch (...) {
        inst->build_error = std::current_exception();
      }
    });
  }
  lockstep_->drain();
  for (const auto& inst : instances_) {
    if (inst->build_error) std::rethrow_exception(inst->build_error);
  }
}

ClusterSim::~ClusterSim() {
  // Teardown must also happen on each instance's shard: in-flight fabric
  // walks drain back into the thread-local pool they were carved from.
  for (int i = 0; i < static_cast<int>(instances_.size()); ++i) {
    Instance* inst = instances_[static_cast<std::size_t>(i)].get();
    lockstep_->post(i, [inst] {
      inst->server.reset();
      inst->platform.reset();
    });
  }
  lockstep_->drain();
}

const serve::ServerSim& ClusterSim::server(int i) const {
  return *instances_[static_cast<std::size_t>(i)]->server;
}

int ClusterSim::pick_class() {
  double total = 0.0;
  for (const auto& cls : catalog_) total += cls.weight;
  double x = class_rng_.uniform() * total;
  for (std::size_t i = 0; i < catalog_.size(); ++i) {
    x -= catalog_[i].weight;
    if (x < 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(catalog_.size()) - 1;
}

int ClusterSim::pick_server() {
  const int n = static_cast<int>(instances_.size());
  switch (cfg_.lb) {
    case LbPolicy::kRoundRobin:
      return static_cast<int>(rr_next_++ % static_cast<std::size_t>(n));
    case LbPolicy::kLeastOutstanding: {
      int best = 0;
      long best_load = 0;
      for (int i = 0; i < n; ++i) {
        const Instance& inst = *instances_[static_cast<std::size_t>(i)];
        const long load = inst.snap_outstanding + inst.inflight_forwards;
        if (i == 0 || load < best_load) {
          best = i;
          best_load = load;
        }
      }
      return best;
    }
    case LbPolicy::kTelemetry: {
      // Fabric pressure (GMI bytes moved last epoch) scaled by how much work
      // the server already holds: a box whose links an antagonist saturates
      // scores high even when its request queue looks as short as anyone's.
      const double epoch_ns = sim::to_ns(epoch_);
      int best = 0;
      double best_score = 0.0;
      for (int i = 0; i < n; ++i) {
        const Instance& inst = *instances_[static_cast<std::size_t>(i)];
        const double gbps = epoch_ns > 0.0 ? inst.gmi_delta / epoch_ns : 0.0;
        const double load =
            1.0 + static_cast<double>(inst.snap_outstanding + inst.inflight_forwards);
        const double score = (1.0 + gbps) * load;
        if (i == 0 || score < best_score) {
          best = i;
          best_score = score;
        }
      }
      return best;
    }
  }
  return 0;
}

void ClusterSim::forward(int target, int cls, sim::Tick at) {
  Instance& inst = *instances_[static_cast<std::size_t>(target)];
  const sim::Tick start = std::max(at, inst.link_busy);
  inst.link_busy = start + sim::serialization_ticks(cfg_.link.request_bytes, cfg_.link.bytes_per_ns);
  const sim::Tick deliver = inst.link_busy + cfg_.link.latency;
  link_wait_ticks_ += static_cast<double>(start - at);
  ++forwarded_;
  ++inst.forwarded;
  ++inst.inflight_forwards;
  // Origin is the front-end arrival time: serialization wait and propagation
  // count against the request's end-to-end latency and SLO. The event itself
  // is pushed by the instance's shard when it reaches route_at_ (see
  // advance_instance), not here — routing may run many epochs ahead.
  inst.pending.push_back({route_at_, deliver, cls, at});
}

void ClusterSim::route_epoch(sim::Tick from, sim::Tick to) {
  route_at_ = from;
  while (next_arrival_ < to) {
    forward(pick_server(), pick_class(), next_arrival_);
    if (arrivals_->exhausted()) {  // finite trace ran dry: no more forwards
      next_arrival_ = kNoMoreArrivals;
      break;
    }
    next_arrival_ += arrivals_->next_gap();
  }
}

void ClusterSim::advance_instance(Instance& inst, sim::Tick target) {
  serve::ServerSim* srv = inst.server.get();
  Instance* self = &inst;
  for (const Instance::PendingForward& fwd : inst.pending) {
    // Reach the routing boundary first: the per-epoch engine pushed this
    // delivery after every event <= route_at had executed, and same-tick
    // order is push order, so the replay must do exactly the same.
    if (fwd.route_at > inst.sim.now()) inst.sim.run_until(fwd.route_at);
    inst.sim.schedule_at(fwd.deliver, [srv, self, cls = fwd.cls, at = fwd.origin] {
      --self->inflight_forwards;
      srv->inject(cls, at);
    });
  }
  inst.pending.clear();
  inst.sim.run_until(target);
}

void ClusterSim::advance_all(sim::Tick boundary) {
  advance_target_ = boundary;
  lockstep_->run();
  ++barriers_run_;
}

void ClusterSim::advance_epochs(sim::Tick from, sim::Tick to) {
  if (to <= from) return;
  epochs_run_ += epoch_windows(from, to, epoch_);
  advance_all(to);
}

bool ClusterSim::needs_snapshots() const noexcept {
  return !cfg_.local_arrivals && cfg_.lb != LbPolicy::kRoundRobin;
}

bool ClusterSim::needs_gmi() const noexcept {
  return !cfg_.local_arrivals && cfg_.lb == LbPolicy::kTelemetry;
}

void ClusterSim::sample_epoch() {
  // Policies that never read a snapshot make this dead work (round-robin
  // reads nothing; local_arrivals routes nothing): skip it entirely. This is
  // behavior-neutral for both engines — the fields are only ever read by
  // pick_server.
  if (!needs_snapshots()) return;
  const bool gmi = needs_gmi();
  for (auto& owned : instances_) {
    Instance& inst = *owned;
    inst.snap_outstanding = inst.server->outstanding_requests();
    if (!gmi) continue;
    const sim::Tick now = inst.sim.now();
    double bytes = 0.0;
    for (int ccd = 0; ccd < inst.platform->ccd_count(); ++ccd) {
      bytes += cnet::link_stats_one(inst.platform->gmi_up(ccd), now).bytes_total;
      bytes += cnet::link_stats_one(inst.platform->gmi_down(ccd), now).bytes_total;
    }
    inst.gmi_delta = bytes - inst.gmi_last_bytes;
    inst.gmi_last_bytes = bytes;
  }
}

void ClusterSim::sample_gmi_baseline() {
  for (auto& owned : instances_) {
    Instance& inst = *owned;
    const sim::Tick now = inst.sim.now();
    double bytes = 0.0;
    for (int ccd = 0; ccd < inst.platform->ccd_count(); ++ccd) {
      bytes += cnet::link_stats_one(inst.platform->gmi_up(ccd), now).bytes_total;
      bytes += cnet::link_stats_one(inst.platform->gmi_down(ccd), now).bytes_total;
    }
    inst.gmi_last_bytes = bytes;
  }
}

bool ClusterSim::busy() const {
  for (const auto& inst : instances_) {
    if (inst->server->outstanding_requests() > 0 || inst->inflight_forwards > 0) return true;
  }
  return false;
}

void ClusterSim::run() {
  if (ran_) return;
  ran_ = true;

  if (!cfg_.local_arrivals) {
    next_arrival_ = arrivals_->exhausted() ? kNoMoreArrivals : arrivals_->next_gap();
  }

  if (cfg_.engine == Engine::kStep) {
    run_step();
  } else {
    run_fused();
  }
}

// The historical loop: route, advance, sample, one barrier per epoch. Kept
// verbatim as the equivalence oracle for the fused engine and the baseline
// for the speedup ctest.
void ClusterSim::run_step() {
  // Arrival phase: route, then advance, in lockstep epochs. Routing for
  // [now, boundary) happens strictly before any instance executes the epoch,
  // using state observed at `now` — the conservative-lookahead contract.
  sim::Tick now = 0;
  while (now < cfg_.stop) {
    const sim::Tick boundary = std::min(now + epoch_, cfg_.stop);
    if (!cfg_.local_arrivals) route_epoch(now, boundary);
    advance_all(boundary);
    sample_epoch();
    ++epochs_run_;
    now = boundary;
  }

  // Drain phase: no new arrivals; keep advancing in epochs until every
  // server is idle and no forward is on the wire, or the drain budget ends.
  const sim::Tick deadline = cfg_.stop + cfg_.max_drain;
  while (busy() && now < deadline) {
    const sim::Tick boundary = std::min(now + epoch_, deadline);
    advance_all(boundary);
    ++epochs_run_;
    now = boundary;
  }
}

// Fused engine: identical observable behavior, far fewer barriers. The
// correctness argument (DESIGN.md, "Fused lockstep barriers") rests on two
// facts: (a) a barrier is only needed where the balancer reads instance
// state or an instance must receive a delivery push in order, and
// (b) between consecutive routing boundaries nothing of the sort happens —
// so one barrier may cover the whole run, with pending deliveries replayed
// at their recorded boundaries by each shard.
void ClusterSim::run_fused() {
  sim::Tick now = 0;
  const sim::Tick stop = cfg_.stop;

  if (cfg_.local_arrivals) {
    // No front-end routing at all: the entire arrival window is one batch.
    advance_epochs(now, stop);
    now = stop;
  } else if (cfg_.lb == LbPolicy::kRoundRobin) {
    // Round-robin reads no server state — the routing sequence (rr cursor,
    // class RNG, arrival stream, link FIFOs) lives entirely on the main
    // thread, so the whole window can be routed up front and advanced in one
    // batch. Each forward is tagged with the epoch boundary the per-epoch
    // engine would have routed it at.
    while (next_arrival_ < stop) {
      route_at_ = (next_arrival_ / epoch_) * epoch_;
      forward(pick_server(), pick_class(), next_arrival_);
      if (arrivals_->exhausted()) {
        next_arrival_ = kNoMoreArrivals;
        break;
      }
      next_arrival_ += arrivals_->next_gap();
    }
    advance_epochs(now, stop);
    now = stop;
  } else {
    // Snapshot-reading policies (least-out, telemetry) must observe state at
    // every boundary that routes. Epochs with no arrival route nothing, so
    // the loop jumps from routing boundary to routing boundary: fast-forward
    // to one epoch before the next arrival's boundary, re-baseline the
    // telemetry counters there (the delta must span exactly [B-E, B], as in
    // the per-epoch engine), advance the final epoch, sample, then route.
    while (now < stop) {
      if (next_arrival_ >= stop) {
        advance_epochs(now, stop);  // no more routing: tail is one batch
        now = stop;
        break;
      }
      const sim::Tick routing = (next_arrival_ / epoch_) * epoch_;
      if (routing > now) {
        const sim::Tick pre = routing - epoch_;
        if (pre > now) advance_epochs(now, pre);
        if (needs_gmi()) sample_gmi_baseline();
        advance_epochs(std::max(pre, now), routing);
        sample_epoch();
        now = routing;
        continue;
      }
      const sim::Tick boundary = std::min(now + epoch_, stop);
      route_epoch(now, boundary);
      advance_epochs(now, boundary);
      sample_epoch();
      now = boundary;
    }
  }

  drain_fused(now);
}

// Drain with idle-epoch fast-skip: busy() can only change when an instance
// executes an event, so instead of stepping epoch by epoch the loop asks
// every instance for its next pending event and jumps straight to the first
// epoch boundary at or past the earliest one. Boundaries stay on the
// per-epoch engine's grid (stop + k*E, capped at the deadline) and every
// skipped window is credited, so epochs/busy/exit all match kStep exactly.
void ClusterSim::drain_fused(sim::Tick now) {
  const sim::Tick deadline = cfg_.stop + cfg_.max_drain;
  while (busy() && now < deadline) {
    sim::Tick next = kNoMoreArrivals;
    for (const auto& inst : instances_) {
      const sim::Tick t = inst->server->next_event_time();
      if (t != sim::Simulator::kNoPendingEvent && t < next) next = t;
    }
    sim::Tick boundary;
    if (next <= now) {
      // Cannot happen after run_until(now) — events <= now already executed —
      // but fall back to one plain epoch rather than trusting it blindly.
      boundary = std::min(now + epoch_, deadline);
    } else if (next >= deadline) {
      // Nothing due inside the budget: advance the clocks to the deadline in
      // one batch (the per-epoch loop would step there without any state
      // change and give up the same way).
      boundary = deadline;
    } else {
      const sim::Tick windows = (next - now + epoch_ - 1) / epoch_;
      boundary = std::min(now + windows * epoch_, deadline);
    }
    advance_epochs(now, boundary);
    now = boundary;
  }
}

ClusterReport ClusterSim::report() const {
  ClusterReport rep;
  rep.forwarded = forwarded_;
  rep.epochs = epochs_run_;
  rep.barriers = barriers_run_;

  stats::Histogram all;
  std::vector<double> shares;
  sim::Tick drained_end = cfg_.stop;
  for (const auto& owned : instances_) {
    const Instance& inst = *owned;
    serve::Report r = inst.server->report();
    rep.arrivals += r.arrivals;
    rep.completed += r.completed;
    rep.in_slo += r.in_slo;
    rep.rejected += r.rejected;
    rep.hedges += r.hedges;
    rep.hedge_wins += r.hedge_wins;
    rep.tier_accesses += r.tier_accesses;
    rep.tier_dram_hits += r.tier_dram_hits;
    rep.tier_promotions += r.tier_promotions;
    rep.tier_demotions += r.tier_demotions;
    rep.tier_migrated_bytes += r.tier_migrated_bytes;
    shares.push_back(static_cast<double>(r.in_slo));
    drained_end = std::max(drained_end, inst.server->measured_end());
    for (int cls = 0; cls < static_cast<int>(catalog_.size()); ++cls) {
      all.merge(inst.server->class_e2e(cls));
    }
    rep.per_server.push_back(std::move(r));
    rep.forwarded_per_server.push_back(inst.forwarded);
  }

  const double window_us = sim::to_us(cfg_.stop - cfg_.warmup);
  const double drained_us = sim::to_us(drained_end - cfg_.warmup);
  if (window_us > 0.0) rep.offered_per_us = static_cast<double>(rep.arrivals) / window_us;
  if (drained_us > 0.0) {
    rep.achieved_per_us = static_cast<double>(rep.completed) / drained_us;
    rep.goodput_per_us = static_cast<double>(rep.in_slo) / drained_us;
  }
  if (!all.empty()) {
    rep.mean_ns = all.mean() / 1000.0;
    rep.p50_ns = static_cast<double>(all.p50()) / 1000.0;
    rep.p99_ns = static_cast<double>(all.p99()) / 1000.0;
    rep.p999_ns = static_cast<double>(all.p999()) / 1000.0;
  }
  if (rep.arrivals > 0) {
    // Rejections are a distinct outcome, not violations: the violation
    // fraction is over admitted requests only (== arrivals when admission
    // control is off, so the pre-GTM formula is unchanged).
    const std::uint64_t admitted = rep.arrivals - rep.rejected;
    if (admitted > 0) {
      rep.slo_violation_frac =
          1.0 - static_cast<double>(rep.in_slo) / static_cast<double>(admitted);
    }
    rep.rejected_frac = static_cast<double>(rep.rejected) / static_cast<double>(rep.arrivals);
  }
  if (rep.tier_accesses > 0) {
    rep.tier_hit_ratio =
        static_cast<double>(rep.tier_dram_hits) / static_cast<double>(rep.tier_accesses);
  }
  rep.jain_server_fairness = stats::jain_index(shares);
  if (rep.forwarded > 0) {
    rep.link_wait_mean_ns = link_wait_ticks_ / 1000.0 / static_cast<double>(rep.forwarded);
  }
  return rep;
}

}  // namespace scn::cluster
