// Instantiated platform: channels, token pools and routes for one CPU.
//
// Platform owns every fabric object for a socket and builds (and caches) the
// Path a transaction takes between any (CCD, CCX) source and any endpoint
// (a UMC/DIMM, the CXL device, or a peer chiplet's LLC). Experiments obtain
// paths and token chains from here and drive them with scn::traffic
// generators; scn::cnet reads the channels/pools back out for telemetry.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "fabric/channel.hpp"
#include "fabric/path.hpp"
#include "fabric/token_pool.hpp"
#include "fabric/types.hpp"
#include "mem/dram_endpoint.hpp"
#include "sim/simulator.hpp"
#include "topo/params.hpp"

namespace scn::topo {

/// Identifies a core on the socket.
struct CoreLoc {
  int ccd = 0;
  int ccx = 0;
  int core = 0;
};

class Platform {
 public:
  Platform(sim::Simulator& simulator, PlatformParams params);

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  [[nodiscard]] const PlatformParams& params() const noexcept { return params_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return *simulator_; }

  // ---- structure -----------------------------------------------------------
  [[nodiscard]] int ccd_count() const noexcept { return params_.ccd_count; }
  [[nodiscard]] int ccx_per_ccd() const noexcept { return params_.ccx_per_ccd; }
  [[nodiscard]] int cores_per_ccx() const noexcept { return params_.cores_per_ccx; }
  [[nodiscard]] int umc_count() const noexcept { return params_.umc_count; }
  [[nodiscard]] bool has_cxl() const noexcept { return params_.has_cxl(); }

  /// Floorplan position of DIMM behind `umc` relative to `ccd` (2x2 quadrant
  /// grid; CCDs and UMCs are distributed round-robin over quadrants).
  [[nodiscard]] DimmPosition position_of(int ccd, int umc) const noexcept;

  /// Bank-level DRAM model behind `umc` (null unless params.detailed_dram).
  [[nodiscard]] mem::DramEndpoint* dram_detail(int umc) noexcept {
    return dram_detail_.empty() ? nullptr : dram_detail_[static_cast<std::size_t>(umc)].get();
  }

  // ---- channels (named accessors used by experiments & telemetry) ---------
  [[nodiscard]] fabric::Channel& ccx_up(int ccd, int ccx) noexcept;
  [[nodiscard]] fabric::Channel& ccx_down(int ccd, int ccx) noexcept;
  [[nodiscard]] fabric::Channel& gmi_up(int ccd) noexcept { return *gmi_up_[ccd]; }
  [[nodiscard]] fabric::Channel& gmi_down(int ccd) noexcept { return *gmi_down_[ccd]; }
  [[nodiscard]] fabric::Channel& noc_up() noexcept { return *noc_up_; }
  [[nodiscard]] fabric::Channel& noc_down() noexcept { return *noc_down_; }
  [[nodiscard]] fabric::Channel& umc_read(int umc) noexcept { return *umc_read_[umc]; }
  [[nodiscard]] fabric::Channel& umc_write(int umc) noexcept { return *umc_write_[umc]; }
  [[nodiscard]] fabric::Channel& peer_out(int ccd) noexcept { return *peer_out_[ccd]; }
  [[nodiscard]] fabric::Channel& peer_in(int ccd) noexcept { return *peer_in_[ccd]; }
  [[nodiscard]] fabric::Channel* plink_up() noexcept { return plink_up_.get(); }
  [[nodiscard]] fabric::Channel* plink_down() noexcept { return plink_down_.get(); }
  [[nodiscard]] fabric::Channel* cxl_read() noexcept { return cxl_read_.get(); }
  [[nodiscard]] fabric::Channel* cxl_write() noexcept { return cxl_write_.get(); }
  [[nodiscard]] fabric::Channel* iodev_down(int ccd) noexcept {
    return iodev_down_.empty() ? nullptr : iodev_down_[ccd].get();
  }
  [[nodiscard]] fabric::Channel* iodev_up(int ccd) noexcept {
    return iodev_up_.empty() ? nullptr : iodev_up_[ccd].get();
  }

  /// Every channel on the platform, for telemetry sweeps.
  [[nodiscard]] std::vector<fabric::Channel*> all_channels();
  /// Every traffic-control pool, for telemetry sweeps.
  [[nodiscard]] std::vector<fabric::TokenPool*> all_pools();

  // ---- token chains --------------------------------------------------------
  /// The compute-chiplet traffic-control chain a transaction from
  /// (ccd, ccx) must pass: CCX pool then CCD pool (entries may be null).
  [[nodiscard]] std::vector<fabric::TokenPool*> compute_pools(int ccd, int ccx);
  /// Traffic-control chain for an op: reads pass the CCX/CCD pools, posted
  /// writes bypass them (the write-combining path is not MSHR-token
  /// governed — this is what lets Zen 4 write queues grow to the Fig. 3-e
  /// depths while reads stay pool-bounded).
  [[nodiscard]] std::vector<fabric::TokenPool*> pools_for(int ccd, int ccx, fabric::Op op);
  [[nodiscard]] fabric::TokenPool* ccx_pool(int ccd, int ccx) noexcept;
  [[nodiscard]] fabric::TokenPool* ccd_pool(int ccd) noexcept;

  // ---- routes --------------------------------------------------------------
  /// Route from (ccd, ccx) to the DIMM behind `umc`.
  [[nodiscard]] fabric::Path& dram_path(int ccd, int ccx, int umc);
  /// NPS1-style interleave set: routes to every UMC, round-robin targets.
  [[nodiscard]] std::vector<fabric::Path*> dram_paths_all(int ccd, int ccx);
  /// NPS4-style position targeting: routes to the UMCs at one position class.
  [[nodiscard]] std::vector<fabric::Path*> dram_paths_at(int ccd, int ccx, DimmPosition pos);
  /// Route from (ccd, ccx) to the CXL memory device. Platform must have CXL.
  [[nodiscard]] fabric::Path& cxl_path(int ccd, int ccx);
  /// Route from (src_ccd, src_ccx) to a peer chiplet's LLC slice.
  [[nodiscard]] fabric::Path& peer_path(int src_ccd, int src_ccx, int dst_ccd);

 private:
  [[nodiscard]] fabric::Path& cached(const std::string& key, fabric::Path&& path);
  void schedule_noise();

  sim::Simulator* simulator_;
  PlatformParams params_;

  std::vector<std::unique_ptr<fabric::Channel>> ccx_up_;   // [ccd * ccx_per_ccd + ccx]
  std::vector<std::unique_ptr<fabric::Channel>> ccx_down_;
  std::vector<std::unique_ptr<fabric::Channel>> gmi_up_;   // [ccd]
  std::vector<std::unique_ptr<fabric::Channel>> gmi_down_;
  std::unique_ptr<fabric::Channel> noc_up_;
  std::unique_ptr<fabric::Channel> noc_down_;
  std::vector<std::unique_ptr<fabric::Channel>> umc_read_;  // [umc]
  std::vector<std::unique_ptr<fabric::Channel>> umc_write_;
  std::vector<std::unique_ptr<fabric::Channel>> peer_out_;  // [ccd]
  std::vector<std::unique_ptr<fabric::Channel>> peer_in_;
  std::vector<std::unique_ptr<fabric::Channel>> iodev_down_;  // [ccd], CXL only
  std::vector<std::unique_ptr<fabric::Channel>> iodev_up_;    // [ccd], CXL only
  std::unique_ptr<fabric::Channel> plink_up_;
  std::unique_ptr<fabric::Channel> plink_down_;
  std::unique_ptr<fabric::Channel> cxl_read_;
  std::unique_ptr<fabric::Channel> cxl_write_;

  std::vector<std::unique_ptr<fabric::TokenPool>> ccx_pools_;  // [ccd * ccx_per_ccd + ccx]
  std::vector<std::unique_ptr<fabric::TokenPool>> ccd_pools_;  // [ccd]
  std::vector<std::unique_ptr<mem::DramEndpoint>> dram_detail_;  // [umc], detailed mode

  /// Periodic-noise tick cells. The platform owns them and closures capture
  /// a raw cell pointer, so a tick holding its own rescheduling closure is
  /// not a shared_ptr cycle (which leaked every abandoned noise chain at
  /// teardown). If the platform dies while ticks are still queued, the
  /// pending closures hold dangling cell pointers but are only destroyed,
  /// never invoked.
  std::vector<std::unique_ptr<std::function<void(int)>>> noise_ticks_;

  std::map<std::string, std::unique_ptr<fabric::Path>> path_cache_;
};

}  // namespace scn::topo
