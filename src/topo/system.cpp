#include "topo/system.hpp"

#include <cassert>

namespace scn::topo {

System::System(sim::Simulator& simulator, SystemParams params)
    : simulator_(&simulator), params_(std::move(params)) {
  assert(params_.socket_count >= 1);
  sockets_.reserve(static_cast<std::size_t>(params_.socket_count));
  for (int s = 0; s < params_.socket_count; ++s) {
    auto socket_params = params_.socket;
    socket_params.name += "/socket" + std::to_string(s);
    sockets_.push_back(std::make_unique<Platform>(simulator, std::move(socket_params)));
  }
  xgmi_.resize(static_cast<std::size_t>(params_.socket_count));
  for (int from = 0; from < params_.socket_count; ++from) {
    xgmi_[static_cast<std::size_t>(from)].resize(static_cast<std::size_t>(params_.socket_count));
    for (int to = 0; to < params_.socket_count; ++to) {
      if (from == to) continue;
      xgmi_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)] =
          std::make_unique<fabric::Channel>(
              "xgmi[" + std::to_string(from) + "->" + std::to_string(to) + "]", params_.xgmi_bw,
              params_.xgmi_prop);
    }
  }
}

fabric::Channel& System::xgmi(int from, int to) noexcept {
  return *xgmi_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
}

fabric::Path& System::dram_path(int src_socket, int ccd, int ccx, int dst_socket, int umc) {
  if (src_socket == dst_socket) return socket(src_socket).dram_path(ccd, ccx, umc);

  const std::string key = "xdram/" + std::to_string(src_socket) + "/" + std::to_string(ccd) +
                          "/" + std::to_string(ccx) + "/" + std::to_string(dst_socket) + "/" +
                          std::to_string(umc);
  if (auto it = path_cache_.find(key); it != path_cache_.end()) return *it->second;

  Platform& src = socket(src_socket);
  Platform& dst = socket(dst_socket);
  const auto& p = src.params();
  // The remote request leaves through the source I/O die, crosses xGMI, and
  // then follows the home socket's memory route; the home position class is
  // taken from CCD 0's view (the xGMI port sits at a fixed die corner).
  const auto pos = dst.position_of(0, umc);
  fabric::Path path;
  path.name = key;
  path.outbound = {
      {nullptr, p.core_out_lat},
      {&src.ccx_up(ccd, ccx), 0},
      {&src.gmi_up(ccd), 0},
      {nullptr, p.base_shops * p.shop_lat},
      {&src.noc_up(), 0},
      {&xgmi(src_socket, dst_socket), 0},
      {nullptr, p.base_shops * p.shop_lat +
                    p.position_extra[static_cast<std::size_t>(pos)]},
      {&dst.noc_up(), 0},
      {nullptr, p.cs_lat},
  };
  path.endpoint = {&dst.umc_read(umc), &dst.umc_write(umc), p.dram_access, p.hiccup_prob,
                   p.dram_hiccup};
  path.inbound = {
      {&dst.noc_down(), 0},
      {&xgmi(dst_socket, src_socket), 0},
      {&src.noc_down(), 0},
      {&src.gmi_down(ccd), 0},
      {&src.ccx_down(ccd, ccx), 0},
      {nullptr, p.return_lat},
  };
  auto owned = std::make_unique<fabric::Path>(std::move(path));
  auto& ref = *owned;
  path_cache_.emplace(key, std::move(owned));
  return ref;
}

std::vector<fabric::Path*> System::dram_paths_all(int src_socket, int ccd, int ccx,
                                                  int dst_socket) {
  std::vector<fabric::Path*> out;
  const int umcs = socket(dst_socket).umc_count();
  out.reserve(static_cast<std::size_t>(umcs));
  for (int u = 0; u < umcs; ++u) out.push_back(&dram_path(src_socket, ccd, ccx, dst_socket, u));
  return out;
}

std::vector<fabric::Channel*> System::all_channels() {
  std::vector<fabric::Channel*> out;
  for (auto& s : sockets_) {
    auto chans = s->all_channels();
    out.insert(out.end(), chans.begin(), chans.end());
  }
  for (auto& row : xgmi_) {
    for (auto& ch : row) {
      if (ch) out.push_back(ch.get());
    }
  }
  return out;
}

}  // namespace scn::topo
