#include "topo/device_tree.hpp"

#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace scn::topo {
namespace {

std::string fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

}  // namespace

std::string device_tree(const Platform& platform) {
  const auto& p = platform.params();
  std::ostringstream os;
  os << "/dts-v1/;\n";
  os << "/ {\n";
  os << "  compatible = \"scn,chiplet-net\";\n";
  os << fmt("  model = \"%s (%s)\";\n", p.name.c_str(), p.microarchitecture.c_str());
  os << "  chiplet-net {\n";
  for (int c = 0; c < p.ccd_count; ++c) {
    os << fmt("    ccd@%d {\n", c);
    os << "      type = \"compute-chiplet\";\n";
    os << fmt("      process = \"%s\";\n", p.process_compute.c_str());
    os << fmt("      quadrant = <%d>;\n", c % 4);
    for (int x = 0; x < p.ccx_per_ccd; ++x) {
      os << fmt("      ccx@%d {\n", x);
      os << fmt("        cores = <%d>;\n", p.cores_per_ccx);
      os << fmt("        l3-cache-mb = <%d>;\n", static_cast<int>(p.l3_mb_per_ccx));
      os << fmt("        if-port { class = \"infinity-fabric\"; up-gbps = <%d>; down-gbps = <%d>; };\n",
                static_cast<int>(p.ccx_up_bw), static_cast<int>(p.ccx_down_bw));
      os << "      };\n";
    }
    os << fmt("      gmi-port { class = \"gmi\"; up-gbps = <%d>; down-gbps = <%d>; };\n",
              static_cast<int>(p.gmi_up_bw), static_cast<int>(p.gmi_down_bw));
    os << "    };\n";
  }
  os << "    iod@0 {\n";
  os << "      type = \"io-chiplet\";\n";
  os << fmt("      process = \"%s\";\n", p.process_io.c_str());
  os << fmt("      noc { topology = \"mesh\"; hop-ns = <%d>; up-gbps = <%d>; down-gbps = <%d>; };\n",
            static_cast<int>(sim::to_ns(p.shop_lat)), static_cast<int>(p.noc_up_bw),
            static_cast<int>(p.noc_down_bw));
  for (int u = 0; u < p.umc_count; ++u) {
    os << fmt("      umc@%d { quadrant = <%d>; read-gbps = <%d>; write-gbps = <%d>; };\n", u,
              u % 4, static_cast<int>(p.umc_read_bw), static_cast<int>(p.umc_write_bw));
  }
  os << fmt("      io-hub { latency-ns = <%d>; pcie = \"%s\"; };\n",
            static_cast<int>(sim::to_ns(p.iohub_lat)), p.pcie.c_str());
  if (p.has_cxl()) {
    os << fmt("      p-link { up-gbps = <%d>; down-gbps = <%d>; };\n",
              static_cast<int>(p.plink_up_bw), static_cast<int>(p.plink_down_bw));
  }
  os << "    };\n";
  if (p.has_cxl()) {
    os << "    cxl-mem@0 {\n";
    os << "      type = \"device-domain\";\n";
    os << fmt("      access-ns = <%d>;\n", static_cast<int>(sim::to_ns(p.cxl_access)));
    os << fmt("      read-gbps = <%d>; write-gbps = <%d>;\n", static_cast<int>(p.cxl_read_bw),
              static_cast<int>(p.cxl_write_bw));
    os << "    };\n";
  }
  os << "  };\n";
  os << "};\n";
  return os.str();
}

std::string inventory(const Platform& platform) {
  const auto& p = platform.params();
  std::ostringstream os;
  os << p.name << " (" << p.microarchitecture << "): " << p.ccd_count << " compute chiplets x "
     << p.ccx_per_ccd << " CCX x " << p.cores_per_ccx << " cores = " << p.total_cores()
     << " cores; " << p.umc_count << " UMCs";
  if (p.has_cxl()) os << "; CXL memory device";
  os << "\n";
  os << "  links: IF " << p.ccx_down_bw << "/" << p.ccx_up_bw << " GB/s (down/up), GMI "
     << p.gmi_down_bw << "/" << p.gmi_up_bw << " GB/s, NoC " << p.noc_down_bw << "/"
     << p.noc_up_bw << " GB/s";
  if (p.has_cxl()) {
    os << ", P-Link " << p.plink_down_bw << "/" << p.plink_up_bw << " GB/s";
  }
  os << "\n";
  return os.str();
}

}  // namespace scn::topo
