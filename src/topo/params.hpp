// Platform parameter sets for the two characterized processors.
//
// Every number here is either taken directly from the paper (Table 1 specs,
// Table 2 latencies) or calibrated so that the emergent behaviour of the
// fabric model reproduces Tables 2-3 and Figures 3-6. The calibration
// rationale for each group is documented inline; tests/test_calibration.cpp
// asserts the resulting model stays within tolerance of the paper.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace scn::topo {

/// DIMM position relative to the requesting compute chiplet (Table 2).
enum class DimmPosition : std::uint8_t { kNear = 0, kVertical = 1, kHorizontal = 2, kDiagonal = 3 };

[[nodiscard]] constexpr const char* to_string(DimmPosition p) noexcept {
  switch (p) {
    case DimmPosition::kNear: return "near";
    case DimmPosition::kVertical: return "vertical";
    case DimmPosition::kHorizontal: return "horizontal";
    case DimmPosition::kDiagonal: return "diagonal";
  }
  return "?";
}

struct PlatformParams {
  std::string name;

  // ---- Table 1: structural specifications --------------------------------
  int ccd_count = 0;       ///< compute chiplets per CPU
  int ccx_per_ccd = 0;     ///< core complexes per CCD
  int cores_per_ccx = 0;   ///< cores per CCX
  int umc_count = 0;       ///< unified memory controllers on the I/O die
  double l1_kb = 0.0;      ///< per core
  double l2_kb = 0.0;      ///< per core
  double l3_mb_per_ccx = 0.0;
  std::string microarchitecture;
  std::string process_compute;
  std::string process_io;
  std::string pcie;
  double base_ghz = 0.0;
  double turbo_ghz = 0.0;

  // ---- Table 2: cache latencies (constants, measured) ---------------------
  sim::Tick l1_lat = 0;
  sim::Tick l2_lat = 0;
  sim::Tick l3_lat = 0;

  // ---- fixed data-path latencies (calibrated so the zero-load DRAM RTT
  //      matches the Table 2 "near" value and position deltas) --------------
  sim::Tick core_out_lat = 0;   ///< L1/L2/L3 miss walk + CCM, outbound
  sim::Tick return_lat = 0;     ///< fixed response-side tail into the core
  sim::Tick gmi_prop = 0;       ///< GMI link propagation (outbound channel)
  sim::Tick shop_lat = 0;       ///< nominal switching-hop latency (Table 2 row)
  int base_shops = 0;           ///< I/O-die hops even for a "near" DIMM
  sim::Tick cs_lat = 0;         ///< coherent station
  sim::Tick iohub_lat = 0;      ///< I/O hub (Table 2 row)
  sim::Tick rootcplx_lat = 0;   ///< PCIe root complex + I/O moderator
  sim::Tick plink_prop = 0;     ///< P-Link propagation
  sim::Tick dram_access = 0;    ///< UMC + DRAM array access
  sim::Tick cxl_access = 0;     ///< CXL controller + media access
  sim::Tick llc_peer_access = 0;  ///< remote LLC slice access (CC<->CC)
  /// Extra round-trip routing latency for a DIMM at each position class,
  /// indexed by DimmPosition (measured deltas of Table 2).
  std::array<sim::Tick, 4> position_extra{};

  // ---- source windows (tokens per core; calibrated from Table 3 row 1:
  //      achieved_bw = window * 64 B / zero-load RTT) -----------------------
  std::uint32_t core_read_window = 0;
  /// Write-combining depth: posted NT writes in flight per core. On Zen 4
  /// this is deep (the Fig. 3-e 4.8x write-latency blowup implies ~250 lines
  /// in flight per CCD) while the issue *rate* is separately capped.
  std::uint32_t core_write_window = 0;
  /// Per-core NT-write issue rate cap, payload bytes/ns (0 => uncapped).
  double core_write_issue_bw = 0.0;
  std::uint32_t cxl_core_read_window = 0;   ///< P-Link per-requester credits
  std::uint32_t cxl_core_write_window = 0;  ///< CXL writes are non-posted
  /// Compute-chiplet traffic-control pools (0 => level absent). The 7302's
  /// tight pools bound queueing (flat Fig. 3-a/c); the 9634's looser pool
  /// lets link queueing dominate (the 2x rise of Fig. 3-b).
  std::uint32_t ccx_pool = 0;
  std::uint32_t ccd_pool = 0;

  // ---- channel capacities, bytes/ns == GB/s (calibrated from Table 3 and
  //      the Fig. 6 interference thresholds) --------------------------------
  double ccx_up_bw = 0.0;    ///< CCX IF port, toward the I/O die
  double ccx_down_bw = 0.0;  ///< CCX IF port, toward the cores
  double gmi_up_bw = 0.0;    ///< per-CCD GMI, toward the I/O die
  double gmi_down_bw = 0.0;  ///< per-CCD GMI, toward the CCD
  double noc_up_bw = 0.0;    ///< I/O-die trunk, CPU->memory aggregate
  double noc_down_bw = 0.0;  ///< I/O-die trunk, memory->CPU aggregate
  double umc_read_bw = 0.0;  ///< per-UMC read return rate
  double umc_write_bw = 0.0; ///< per-UMC write drain rate
  double peer_out_bw = 0.0;  ///< per-CCD LLC egress onto the cross mesh
  double peer_in_bw = 0.0;   ///< per-CCD LLC ingress from the cross mesh
  double iodev_ccd_down_bw = 0.0;  ///< per-CCD device-read return credit
  double iodev_ccd_up_bw = 0.0;    ///< per-CCD device-write submit credit
  double plink_up_bw = 0.0;
  double plink_down_bw = 0.0;
  double cxl_read_bw = 0.0;  ///< CXL device service; <= 0 => no CXL module
  double cxl_write_bw = 0.0;

  // ---- tail behaviour ------------------------------------------------------
  /// Rare per-request slow accesses (additive; delays only that request).
  double hiccup_prob = 0.0;
  sim::Tick dram_hiccup = 0;
  sim::Tick cxl_hiccup = 0;
  /// Periodic endpoint-blocking noise (refresh-like): every `noise_interval`
  /// each memory/device service channel stalls for the hiccup duration;
  /// every `noise_burst_every`-th stall is `noise_burst_factor`x longer.
  /// Under load these stalls make queued requests pile up, producing the
  /// paper's 2-5x tail amplification (§3.4); at ~1% duty they cost almost no
  /// bandwidth. 0 disables.
  sim::Tick noise_interval = 0;
  int noise_burst_every = 10;
  double noise_burst_factor = 3.0;

  // ---- detailed-substrate switches ----------------------------------------
  /// Replace the abstract UMC service-rate endpoints with bank-level DRAM
  /// models (mem::DramEndpoint): DDR timings, row-buffer state, refresh.
  /// Default off — the abstract endpoints are what the paper numbers are
  /// calibrated against; tests/test_mem_dram.cpp cross-validates the two.
  bool detailed_dram = false;

  // ---- Fig. 5 harvesting dynamics (see fabric::AdaptiveWindowPolicy) ------
  sim::Tick if_adjust_period = 0;     ///< IF-class window adjustment period
  sim::Tick plink_adjust_period = 0;  ///< P-Link-class adjustment period
  double if_decrease_factor = 0.9;    ///< 7302 IF uses an aggressive factor
                                      ///< which produces its Fig. 5 oscillation
  double if_congestion_ratio = 1.15;  ///< RTT inflation the IF controller
                                      ///< tolerates; the 7302's is hair-trigger

  [[nodiscard]] int cores_per_ccd() const noexcept { return ccx_per_ccd * cores_per_ccx; }
  [[nodiscard]] int total_cores() const noexcept { return ccd_count * cores_per_ccd(); }
  [[nodiscard]] bool has_cxl() const noexcept { return cxl_read_bw > 0.0; }
};

/// AMD EPYC 7302 (Zen 2): 16 cores / 8 CCX / 4 CCD, 12 nm I/O die.
[[nodiscard]] PlatformParams epyc7302();

/// AMD EPYC 9634 (Zen 4): 84 cores / 12 CCX / 12 CCD, 6 nm I/O die,
/// four Micron CZ120 CXL modules behind the P-Links.
[[nodiscard]] PlatformParams epyc9634();

}  // namespace scn::topo
