// Hardware-abstracted chiplet networking layer, part 1 (paper §4, direction
// #1): a device-tree-like description of the chiplet network, the analogue of
// the proposed /sys/firmware/chiplet-net. Runtime telemetry (the
// /proc/chiplet-net analogue) lives in scn::cnet.
#pragma once

#include <string>

#include "topo/platform.hpp"

namespace scn::topo {

/// Render the platform's structure in device-tree source syntax: chiplets,
/// interconnect ports with their link class and capacities, memory
/// controllers and device domains.
[[nodiscard]] std::string device_tree(const Platform& platform);

/// One-line-per-component inventory (human-oriented).
[[nodiscard]] std::string inventory(const Platform& platform);

}  // namespace scn::topo
