// Multi-socket system model.
//
// The paper's Dell 7525 testbed carries *two* EPYC 7302 packages; its
// characterization stays within one socket, but any deployment of the
// chiplet-networking layer must also see the next tier of the hierarchy: the
// socket-to-socket xGMI links (Infinity Fabric inter-socket). System wires N
// Platforms together and builds remote-memory routes: a core's request
// leaves its own I/O die, crosses xGMI, traverses the home socket's NoC and
// lands on the home UMC — one more level of the Fig. 2 "network of
// heterogeneous networks".
#pragma once

#include <memory>
#include <vector>

#include "topo/platform.hpp"

namespace scn::topo {

struct SystemParams {
  PlatformParams socket;         ///< per-socket platform parameters
  int socket_count = 2;
  double xgmi_bw = 35.0;         ///< per-direction xGMI bandwidth, bytes/ns
  sim::Tick xgmi_prop = sim::from_ns(45.0);  ///< one-way socket-hop latency
};

class System {
 public:
  System(sim::Simulator& simulator, SystemParams params);

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  [[nodiscard]] int socket_count() const noexcept { return params_.socket_count; }
  [[nodiscard]] Platform& socket(int i) noexcept { return *sockets_[static_cast<std::size_t>(i)]; }

  /// The xGMI channel carrying traffic from socket `from` toward `to`.
  [[nodiscard]] fabric::Channel& xgmi(int from, int to) noexcept;

  /// Route from a core on `src_socket` to a DIMM homed on `dst_socket`.
  /// Same-socket requests are just the platform's own route.
  [[nodiscard]] fabric::Path& dram_path(int src_socket, int ccd, int ccx, int dst_socket,
                                        int umc);

  /// NUMA-interleave set: every UMC of the destination socket.
  [[nodiscard]] std::vector<fabric::Path*> dram_paths_all(int src_socket, int ccd, int ccx,
                                                          int dst_socket);

  /// All channels across every socket plus the xGMI mesh (telemetry sweeps).
  [[nodiscard]] std::vector<fabric::Channel*> all_channels();

 private:
  sim::Simulator* simulator_;
  SystemParams params_;
  std::vector<std::unique_ptr<Platform>> sockets_;
  // xgmi_[from][to], empty diagonal
  std::vector<std::vector<std::unique_ptr<fabric::Channel>>> xgmi_;
  std::map<std::string, std::unique_ptr<fabric::Path>> path_cache_;
};

}  // namespace scn::topo
