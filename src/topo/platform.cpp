#include "topo/platform.hpp"

#include <cassert>
#include <cstdlib>
#include <functional>
#include <memory>
#include <utility>

#include "spec/spec.hpp"

namespace scn::topo {
namespace {

std::string idx_name(const std::string& base, int i) { return base + "[" + std::to_string(i) + "]"; }

}  // namespace

Platform::Platform(sim::Simulator& simulator, PlatformParams params)
    : simulator_(&simulator), params_(std::move(params)) {
  // Fail fast on programmatic misconfiguration (zero chiplet counts, windows
  // without channel capacities, CXL without a P-Link, ...) instead of
  // producing NaN bandwidths mid-sweep. File specs are validated again here
  // after any caller-side mutation.
  spec::validate_or_throw(params_, "topo::Platform(" + params_.name + ")");
  const auto& p = params_;
  const int ccx_total = p.ccd_count * p.ccx_per_ccd;

  ccx_up_.reserve(ccx_total);
  ccx_down_.reserve(ccx_total);
  ccx_pools_.reserve(ccx_total);
  for (int i = 0; i < ccx_total; ++i) {
    ccx_up_.push_back(std::make_unique<fabric::Channel>(idx_name("ccx_up", i), p.ccx_up_bw, 0));
    ccx_down_.push_back(
        std::make_unique<fabric::Channel>(idx_name("ccx_down", i), p.ccx_down_bw, 0));
    ccx_pools_.push_back(p.ccx_pool > 0
                             ? std::make_unique<fabric::TokenPool>(idx_name("ccx_pool", i), p.ccx_pool)
                             : nullptr);
  }
  gmi_up_.reserve(p.ccd_count);
  gmi_down_.reserve(p.ccd_count);
  ccd_pools_.reserve(p.ccd_count);
  peer_out_.reserve(p.ccd_count);
  peer_in_.reserve(p.ccd_count);
  for (int c = 0; c < p.ccd_count; ++c) {
    gmi_up_.push_back(
        std::make_unique<fabric::Channel>(idx_name("gmi_up", c), p.gmi_up_bw, p.gmi_prop));
    gmi_down_.push_back(std::make_unique<fabric::Channel>(idx_name("gmi_down", c), p.gmi_down_bw, 0));
    ccd_pools_.push_back(p.ccd_pool > 0
                             ? std::make_unique<fabric::TokenPool>(idx_name("ccd_pool", c), p.ccd_pool)
                             : nullptr);
    peer_out_.push_back(std::make_unique<fabric::Channel>(idx_name("peer_out", c), p.peer_out_bw, 0));
    peer_in_.push_back(std::make_unique<fabric::Channel>(idx_name("peer_in", c), p.peer_in_bw, 0));
  }
  noc_up_ = std::make_unique<fabric::Channel>("noc_up", p.noc_up_bw, 0);
  noc_down_ = std::make_unique<fabric::Channel>("noc_down", p.noc_down_bw, 0);
  umc_read_.reserve(p.umc_count);
  umc_write_.reserve(p.umc_count);
  for (int u = 0; u < p.umc_count; ++u) {
    umc_read_.push_back(std::make_unique<fabric::Channel>(idx_name("umc_read", u), p.umc_read_bw, 0));
    umc_write_.push_back(
        std::make_unique<fabric::Channel>(idx_name("umc_write", u), p.umc_write_bw, 0));
  }
  if (p.has_cxl()) {
    plink_up_ = std::make_unique<fabric::Channel>("plink_up", p.plink_up_bw, p.plink_prop);
    plink_down_ = std::make_unique<fabric::Channel>("plink_down", p.plink_down_bw, 0);
    cxl_read_ = std::make_unique<fabric::Channel>("cxl_read", p.cxl_read_bw, 0);
    cxl_write_ = std::make_unique<fabric::Channel>("cxl_write", p.cxl_write_bw, 0);
    iodev_down_.reserve(p.ccd_count);
    iodev_up_.reserve(p.ccd_count);
    for (int c = 0; c < p.ccd_count; ++c) {
      iodev_down_.push_back(
          std::make_unique<fabric::Channel>(idx_name("iodev_down", c), p.iodev_ccd_down_bw, 0));
      iodev_up_.push_back(
          std::make_unique<fabric::Channel>(idx_name("iodev_up", c), p.iodev_ccd_up_bw, 0));
    }
  }
  if (p.detailed_dram) {
    // DDR4 on the Zen 2 box, DDR5 on the Zen 4 box (Table 1 testbeds). The
    // front-end constant keeps the idle end-to-end latency aligned with the
    // abstract calibration (dram_access = front_end + tRCD + tCL + burst).
    const auto timings = p.ccx_per_ccd > 1 ? mem::DramTimings::ddr4_3200()
                                           : mem::DramTimings::ddr5_4800();
    const sim::Tick row_miss =
        sim::from_ns(timings.tRCD + timings.tCL + timings.burst_ns);
    const sim::Tick front_end = p.dram_access > row_miss ? p.dram_access - row_miss : 0;
    dram_detail_.reserve(p.umc_count);
    for (int u = 0; u < p.umc_count; ++u) {
      mem::DramEndpoint::Config cfg;
      cfg.timings = timings;
      cfg.front_end = front_end;
      cfg.seed = 0xD1AA + static_cast<std::uint64_t>(u);
      dram_detail_.push_back(std::make_unique<mem::DramEndpoint>(cfg));
    }
  }
  schedule_noise();
}

void Platform::schedule_noise() {
  if (params_.noise_interval <= 0) return;
  // Refresh-like endpoint stalls for the experiment horizon (covers the
  // longest trace, Fig. 5's 6 scaled-seconds, with slack). The stalls block
  // the endpoint's service channels so queued requests pile up behind them —
  // the tail amplification of §3.4 — at ~1% duty cycle.
  constexpr sim::Tick kHorizon = sim::from_ms(12.0);
  struct Spec {
    fabric::Channel* channel;
    sim::Tick duration;
  };
  std::vector<Spec> specs;
  for (auto& ch : umc_read_) specs.push_back({ch.get(), params_.dram_hiccup});
  for (auto& ch : umc_write_) specs.push_back({ch.get(), params_.dram_hiccup});
  if (cxl_read_) specs.push_back({cxl_read_.get(), params_.cxl_hiccup});
  if (cxl_write_) specs.push_back({cxl_write_.get(), params_.cxl_hiccup});

  const sim::Tick interval = params_.noise_interval;
  const int burst_every = params_.noise_burst_every > 0 ? params_.noise_burst_every : 1;
  const double burst_factor = params_.noise_burst_factor;
  int idx = 0;
  for (const auto& spec : specs) {
    // Deterministic per-channel phase so stalls do not align across UMCs.
    const sim::Tick phase = (static_cast<sim::Tick>(idx) * 7919 * sim::kTicksPerNs) % interval;
    ++idx;
    noise_ticks_.push_back(std::make_unique<std::function<void(int)>>());
    std::function<void(int)>* tick = noise_ticks_.back().get();
    fabric::Channel* channel = spec.channel;
    const sim::Tick duration = spec.duration;
    sim::Simulator* simulator = simulator_;
    *tick = [=](int n) {
      const bool burst = burst_every > 0 && n % burst_every == burst_every - 1;
      const auto d = burst ? static_cast<sim::Tick>(static_cast<double>(duration) * burst_factor)
                           : duration;
      channel->stall(simulator->now(), d);
      if (simulator->now() + interval <= kHorizon) {
        simulator->schedule(interval, [tick, n] { (*tick)(n + 1); });
      }
    };
    simulator_->schedule_at(phase, [tick] { (*tick)(0); });
  }
}

std::vector<fabric::TokenPool*> Platform::pools_for(int ccd, int ccx, fabric::Op op) {
  if (op == fabric::Op::kWrite) return {};
  return compute_pools(ccd, ccx);
}

DimmPosition Platform::position_of(int ccd, int umc) const noexcept {
  // 2x2 quadrant floorplan; CCDs and UMCs are distributed round-robin. The
  // die is wider than tall, so a horizontal crossing is longer than a
  // vertical one and a diagonal crossing is the longest route class.
  const int cq = ccd % 4;
  const int uq = umc % 4;
  const int dx = std::abs((cq & 1) - (uq & 1));
  const int dy = std::abs((cq >> 1) - (uq >> 1));
  if (dx == 0 && dy == 0) return DimmPosition::kNear;
  if (dx == 0) return DimmPosition::kVertical;
  if (dy == 0) return DimmPosition::kHorizontal;
  return DimmPosition::kDiagonal;
}

fabric::Channel& Platform::ccx_up(int ccd, int ccx) noexcept {
  return *ccx_up_[static_cast<std::size_t>(ccd * params_.ccx_per_ccd + ccx)];
}
fabric::Channel& Platform::ccx_down(int ccd, int ccx) noexcept {
  return *ccx_down_[static_cast<std::size_t>(ccd * params_.ccx_per_ccd + ccx)];
}

fabric::TokenPool* Platform::ccx_pool(int ccd, int ccx) noexcept {
  return ccx_pools_[static_cast<std::size_t>(ccd * params_.ccx_per_ccd + ccx)].get();
}
fabric::TokenPool* Platform::ccd_pool(int ccd) noexcept {
  return ccd_pools_[static_cast<std::size_t>(ccd)].get();
}

std::vector<fabric::TokenPool*> Platform::compute_pools(int ccd, int ccx) {
  return {ccx_pool(ccd, ccx), ccd_pool(ccd)};
}

std::vector<fabric::Channel*> Platform::all_channels() {
  std::vector<fabric::Channel*> out;
  auto add = [&out](auto& vec) {
    for (auto& ch : vec) {
      if (ch) out.push_back(ch.get());
    }
  };
  add(ccx_up_);
  add(ccx_down_);
  add(gmi_up_);
  add(gmi_down_);
  out.push_back(noc_up_.get());
  out.push_back(noc_down_.get());
  add(umc_read_);
  add(umc_write_);
  add(peer_out_);
  add(peer_in_);
  add(iodev_down_);
  add(iodev_up_);
  for (auto* ch : {plink_up_.get(), plink_down_.get(), cxl_read_.get(), cxl_write_.get()}) {
    if (ch != nullptr) out.push_back(ch);
  }
  return out;
}

std::vector<fabric::TokenPool*> Platform::all_pools() {
  std::vector<fabric::TokenPool*> out;
  for (auto& pool : ccx_pools_) {
    if (pool) out.push_back(pool.get());
  }
  for (auto& pool : ccd_pools_) {
    if (pool) out.push_back(pool.get());
  }
  return out;
}

fabric::Path& Platform::cached(const std::string& key, fabric::Path&& path) {
  auto it = path_cache_.find(key);
  if (it == path_cache_.end()) {
    it = path_cache_.emplace(key, std::make_unique<fabric::Path>(std::move(path))).first;
  }
  return *it->second;
}

fabric::Path& Platform::dram_path(int ccd, int ccx, int umc) {
  const std::string key =
      "dram/" + std::to_string(ccd) + "/" + std::to_string(ccx) + "/" + std::to_string(umc);
  if (auto it = path_cache_.find(key); it != path_cache_.end()) return *it->second;

  const auto& p = params_;
  const auto pos = position_of(ccd, umc);
  fabric::Path path;
  path.name = key;
  path.outbound = {
      {nullptr, p.core_out_lat},
      {&ccx_up(ccd, ccx), 0},
      {&gmi_up(ccd), 0},
      {nullptr, p.base_shops * p.shop_lat + p.position_extra[static_cast<std::size_t>(pos)]},
      {&noc_up(), 0},
      {nullptr, p.cs_lat},
  };
  path.endpoint = {&umc_read(umc), &umc_write(umc), p.dram_access, p.hiccup_prob, p.dram_hiccup};
  if (p.detailed_dram) {
    mem::DramEndpoint* detail = dram_detail_[static_cast<std::size_t>(umc)].get();
    path.endpoint.custom_service = [detail](sim::Tick now, bool is_write, double bytes) {
      return detail->service(now, is_write, bytes);
    };
  }
  path.inbound = {
      {&noc_down(), 0},
      {&gmi_down(ccd), 0},
      {&ccx_down(ccd, ccx), 0},
      {nullptr, p.return_lat},
  };
  return cached(key, std::move(path));
}

std::vector<fabric::Path*> Platform::dram_paths_all(int ccd, int ccx) {
  std::vector<fabric::Path*> out;
  out.reserve(static_cast<std::size_t>(params_.umc_count));
  for (int u = 0; u < params_.umc_count; ++u) out.push_back(&dram_path(ccd, ccx, u));
  return out;
}

std::vector<fabric::Path*> Platform::dram_paths_at(int ccd, int ccx, DimmPosition pos) {
  std::vector<fabric::Path*> out;
  for (int u = 0; u < params_.umc_count; ++u) {
    if (position_of(ccd, u) == pos) out.push_back(&dram_path(ccd, ccx, u));
  }
  return out;
}

fabric::Path& Platform::cxl_path(int ccd, int ccx) {
  assert(has_cxl() && "platform has no CXL device (the 7302 box, Table 1)");
  const std::string key = "cxl/" + std::to_string(ccd) + "/" + std::to_string(ccx);
  if (auto it = path_cache_.find(key); it != path_cache_.end()) return *it->second;

  const auto& p = params_;
  fabric::Path path;
  path.name = key;
  path.outbound = {
      {nullptr, p.core_out_lat},
      {&ccx_up(ccd, ccx), 0},
      {&gmi_up(ccd), 0},
      {nullptr, p.base_shops * p.shop_lat},
      {&noc_up(), 0},
      {nullptr, p.iohub_lat + p.rootcplx_lat},
      {iodev_up(ccd), 0},
      {plink_up(), 0},
  };
  // CXL.mem writes are non-posted: credits are held until the NDR returns.
  path.endpoint = {cxl_read(), cxl_write(), p.cxl_access, p.hiccup_prob, p.cxl_hiccup,
                   /*posted_writes=*/false};
  path.inbound = {
      {plink_down(), 0},
      {iodev_down(ccd), 0},
      {&noc_down(), 0},
      {&gmi_down(ccd), 0},
      {&ccx_down(ccd, ccx), 0},
      {nullptr, p.return_lat},
  };
  return cached(key, std::move(path));
}

fabric::Path& Platform::peer_path(int src_ccd, int src_ccx, int dst_ccd) {
  const std::string key =
      "peer/" + std::to_string(src_ccd) + "/" + std::to_string(src_ccx) + "/" + std::to_string(dst_ccd);
  if (auto it = path_cache_.find(key); it != path_cache_.end()) return *it->second;

  const auto& p = params_;
  fabric::Path path;
  path.name = key;
  path.outbound = {
      {nullptr, p.core_out_lat},
      {&ccx_up(src_ccd, src_ccx), 0},
      {&gmi_up(src_ccd), 0},
      {nullptr, p.base_shops * p.shop_lat},
  };
  // Remote-LLC accesses see rare slow responses too (snoop/probe conflicts);
  // reuse the platform hiccup rate at half the DRAM magnitude.
  path.endpoint = {&peer_out(dst_ccd), &peer_in(dst_ccd), p.llc_peer_access, p.hiccup_prob,
                   p.dram_hiccup};
  path.inbound = {
      {&gmi_down(src_ccd), 0},
      {&ccx_down(src_ccd, src_ccx), 0},
      {nullptr, p.return_lat},
  };
  return cached(key, std::move(path));
}

}  // namespace scn::topo
