#include "topo/params.hpp"

namespace scn::topo {

using sim::from_ns;
using sim::from_us;

PlatformParams epyc7302() {
  PlatformParams p;
  p.name = "EPYC 7302";
  p.microarchitecture = "Zen 2";
  p.process_compute = "7nm";
  p.process_io = "12nm";
  p.pcie = "Gen4/128";
  p.base_ghz = 3.0;
  p.turbo_ghz = 3.3;
  p.ccd_count = 4;
  p.ccx_per_ccd = 2;
  p.cores_per_ccx = 2;
  p.umc_count = 8;
  p.l1_kb = 32;
  p.l2_kb = 512;
  p.l3_mb_per_ccx = 16;  // 128 MB / 8 CCX

  // Table 2 cache latencies.
  p.l1_lat = from_ns(1.24);
  p.l2_lat = from_ns(5.66);
  p.l3_lat = from_ns(34.3);

  // Fixed path latencies. Budgeted so that zero-load DRAM RTT (near) =
  // core_out + gmi_prop + base_shops*shop + cs + dram + return + ~2.5 ns of
  // pointer-chase serialization = 124 ns (Table 2).
  p.core_out_lat = from_ns(42.0);
  p.return_lat = from_ns(7.0);
  p.gmi_prop = from_ns(9.0);
  p.shop_lat = from_ns(8.0);
  p.base_shops = 2;
  p.cs_lat = from_ns(5.0);
  p.iohub_lat = from_ns(15.0);
  p.rootcplx_lat = from_ns(8.0);
  p.plink_prop = from_ns(12.0);
  p.dram_access = from_ns(32.5);
  p.cxl_access = 0;  // no CXL module on this box
  p.llc_peer_access = from_ns(60.0);
  // Measured position deltas: 124/131/141/145 ns.
  p.position_extra = {from_ns(0.0), from_ns(7.0), from_ns(17.0), from_ns(21.0)};

  // Windows: core read 14.9 GB/s at the ~136 ns UMC-interleaved RTT -> 32
  // lines; write 3.6 GB/s at the ~132 ns write-accept RTT -> 7 lines.
  p.core_read_window = 32;
  p.core_write_window = 7;
  p.core_write_issue_bw = 0.0;  // window-limited, no separate issue cap
  p.cxl_core_read_window = 0;
  p.cxl_core_write_window = 0;
  // Tight pools: bound queueing to the Table 2 maxima and keep Fig. 3-a/c
  // latencies flat ("the 7302 provisions enough bandwidth").
  p.ccx_pool = 56;
  p.ccd_pool = 90;

  // Capacities (Table 3): CCX read 25.1, CCD/GMI read 32.5, CPU/NoC read
  // 106.7, write 55.1; UMC 21.1/19.0. Up-direction caps leave headroom
  // because 7302 write throughput is source-window-limited, not link-limited.
  p.ccx_up_bw = 16.0;
  p.ccx_down_bw = 25.4;
  p.gmi_up_bw = 17.0;
  p.gmi_down_bw = 32.9;
  p.noc_up_bw = 69.0;
  p.noc_down_bw = 107.5;
  p.umc_read_bw = 21.1;
  p.umc_write_bw = 19.0;
  p.peer_out_bw = 55.0;
  p.peer_in_bw = 55.0;
  p.iodev_ccd_down_bw = 0.0;
  p.iodev_ccd_up_bw = 0.0;
  p.plink_up_bw = 0.0;
  p.plink_down_bw = 0.0;
  p.cxl_read_bw = 0.0;
  p.cxl_write_bw = 0.0;

  p.hiccup_prob = 0.0015;
  p.dram_hiccup = from_ns(330.0);
  p.cxl_hiccup = 0;
  p.noise_interval = from_us(30.0);

  // Fig. 5: the 7302 IF module oscillates ("drastic variation"); a large
  // multiplicative decrease with a short period reproduces the sawtooth.
  p.if_adjust_period = from_us(10.0);
  p.plink_adjust_period = from_us(50.0);
  p.if_decrease_factor = 0.55;
  p.if_congestion_ratio = 1.08;
  return p;
}

PlatformParams epyc9634() {
  PlatformParams p;
  p.name = "EPYC 9634";
  p.microarchitecture = "Zen 4";
  p.process_compute = "5nm";
  p.process_io = "6nm";
  p.pcie = "Gen5/128";
  p.base_ghz = 2.25;
  p.turbo_ghz = 3.7;
  p.ccd_count = 12;
  p.ccx_per_ccd = 1;
  p.cores_per_ccx = 7;
  p.umc_count = 12;
  p.l1_kb = 64;
  p.l2_kb = 1024;
  p.l3_mb_per_ccx = 32;  // 384 MB / 12 CCX

  p.l1_lat = from_ns(1.19);
  p.l2_lat = from_ns(7.51);
  p.l3_lat = from_ns(40.8);

  // Zero-load DRAM RTT (near) = 141 ns; CXL RTT = 243 ns (Table 2).
  p.core_out_lat = from_ns(48.0);
  p.return_lat = from_ns(7.0);
  p.gmi_prop = from_ns(9.0);
  p.shop_lat = from_ns(4.0);
  p.base_shops = 2;
  p.cs_lat = from_ns(5.0);
  p.iohub_lat = from_ns(15.0);
  p.rootcplx_lat = from_ns(8.0);
  p.plink_prop = from_ns(12.0);
  p.dram_access = from_ns(55.0);
  p.cxl_access = from_ns(122.0);
  p.llc_peer_access = from_ns(60.0);
  // Measured deltas: 141/145/150/149 ns (diagonal routes no farther than
  // horizontal on this floorplan).
  p.position_extra = {from_ns(0.0), from_ns(4.0), from_ns(9.0), from_ns(8.0)};

  // Core read 14.6 GB/s @ 141 ns -> 32 lines; write 3.3 GB/s -> 7 (the write
  // ack path is shorter, ~136 ns). CXL credits: 5.4 GB/s @ 243 ns -> 21
  // read; 2.8 GB/s -> 11 write.
  p.core_read_window = 34;
  p.core_write_window = 36;
  p.core_write_issue_bw = 3.4;  // WC-buffer drain rate (core write 3.3 GB/s)
  p.cxl_core_read_window = 21;
  p.cxl_core_write_window = 11;
  // Loose pool: link queueing dominates (Fig. 3-b's ~2x latency rise); no
  // CCD-level pool (one CCX per CCD, Table 2 row is N/A).
  p.ccx_pool = 130;
  p.ccd_pool = 0;

  // Table 3: CCX read 35.2, GMI read 33.2, CPU 366.2/270.6; UMC 34.9/28.3;
  // CXL: per-CCD read return ~24.3, device 88.1/87.7. Fig. 6 thresholds:
  // CCX up 38 (write interference at bg read 32.8), GMI up 29.1.
  p.ccx_up_bw = 38.0;
  p.ccx_down_bw = 35.4;
  p.gmi_up_bw = 29.1;
  p.gmi_down_bw = 33.4;
  p.noc_up_bw = 338.0;
  p.noc_down_bw = 366.5;
  p.umc_read_bw = 34.9;
  p.umc_write_bw = 28.3;
  p.peer_out_bw = 55.7;
  p.peer_in_bw = 60.0;
  p.iodev_ccd_down_bw = 24.5;
  p.iodev_ccd_up_bw = 19.5;
  p.plink_up_bw = 112.0;
  p.plink_down_bw = 92.0;
  p.cxl_read_bw = 88.1;
  p.cxl_write_bw = 87.7;

  p.hiccup_prob = 0.0015;
  p.dram_hiccup = from_ns(230.0);
  p.cxl_hiccup = from_ns(420.0);
  p.noise_interval = from_us(30.0);

  // Fig. 5: harvest in ~100 ms on IF and ~500 ms on the P-Link (scaled
  // 1000x to 100 us / 500 us; see DESIGN.md).
  p.if_adjust_period = from_us(10.0);
  p.plink_adjust_period = from_us(60.0);
  p.if_decrease_factor = 0.9;
  return p;
}

}  // namespace scn::topo
