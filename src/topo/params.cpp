#include "topo/params.hpp"

#include "spec/spec.hpp"

namespace scn::topo {

// The platform numbers live as spec text in src/spec/builtins.cpp and flow
// through the same schema-driven parser as any user-supplied .scn file
// (platforms as data — see spec::lookup / spec::load). These accessors keep
// the historical API; each parses its embedded spec once and hands out
// copies.

PlatformParams epyc7302() {
  static const PlatformParams p = spec::lookup("epyc7302");
  return p;
}

PlatformParams epyc9634() {
  static const PlatformParams p = spec::lookup("epyc9634");
  return p;
}

}  // namespace scn::topo
